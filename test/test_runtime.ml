open Cgra_arch
open Cgra_core

let arch size page_pes = Option.get (Cgra.standard ~size ~page_pes)

let suite_for a =
  match Binary.compile_suite a with
  | Ok s -> s
  | Error e -> Alcotest.failf "compile_suite: %s" e

let suite_4x4_p4 = lazy (suite_for (arch 4 4))

(* ---------- Allocator ---------- *)

let ranges_cover_and_disjoint (al : Allocator.t) total =
  let covered = Array.make total 0 in
  List.iter
    (fun (_, (r : Allocator.range)) ->
      for i = r.base to r.base + r.len - 1 do
        covered.(i) <- covered.(i) + 1
      done)
    (Allocator.clients al);
  Array.for_all (fun c -> c <= 1) covered

let test_alloc_simple_request () =
  let al = Allocator.create ~total_pages:8 () in
  (match Allocator.request al ~client:1 ~desired:3 with
  | Some r -> Alcotest.(check int) "granted 3" 3 r.len
  | None -> Alcotest.fail "request failed");
  Alcotest.(check int) "free" 5 (Allocator.free_pages al)

let test_alloc_fits_unused_portion () =
  (* the paper: a kernel that fits in the unused portion disturbs no one *)
  let al = Allocator.create ~total_pages:8 () in
  let r1 = Option.get (Allocator.request al ~client:1 ~desired:3) in
  let r2 = Option.get (Allocator.request al ~client:2 ~desired:4) in
  Alcotest.(check int) "client 1 untouched" 3
    (Option.get (Allocator.allocation al ~client:1)).len;
  Alcotest.(check bool) "disjoint" true (ranges_cover_and_disjoint al 8);
  ignore (r1, r2)

let test_alloc_halving_preemption () =
  let al = Allocator.create ~total_pages:8 () in
  let _ = Option.get (Allocator.request al ~client:1 ~desired:8) in
  (* fabric full: next request halves the big holder *)
  let r2 = Option.get (Allocator.request al ~client:2 ~desired:8) in
  let r1 = Option.get (Allocator.allocation al ~client:1) in
  Alcotest.(check int) "victim halved" 4 r1.len;
  Alcotest.(check int) "newcomer gets the other half" 4 r2.len;
  Alcotest.(check bool) "disjoint" true (ranges_cover_and_disjoint al 8)

let test_alloc_exhaustion () =
  let al = Allocator.create ~total_pages:2 () in
  let _ = Option.get (Allocator.request al ~client:1 ~desired:1) in
  let _ = Option.get (Allocator.request al ~client:2 ~desired:1) in
  (* everyone at one page: nothing can shrink *)
  Alcotest.(check bool) "third must wait" true
    (Allocator.request al ~client:3 ~desired:1 = None)

let test_alloc_release_merges () =
  let al = Allocator.create ~total_pages:8 () in
  let _ = Option.get (Allocator.request al ~client:1 ~desired:4) in
  let _ = Option.get (Allocator.request al ~client:2 ~desired:4) in
  Allocator.release al ~client:1;
  Allocator.release al ~client:2;
  (match Allocator.request al ~client:3 ~desired:8 with
  | Some r -> Alcotest.(check int) "whole fabric again" 8 r.len
  | None -> Alcotest.fail "merge failed")

let test_alloc_expand_after_release () =
  let al = Allocator.create ~total_pages:8 () in
  let _ = Option.get (Allocator.request al ~client:1 ~desired:8) in
  let _ = Option.get (Allocator.request al ~client:2 ~desired:8) in
  (* both now at 4; client 2 leaves; client 1 should expand back to 8 *)
  Allocator.release al ~client:2;
  let grants = Allocator.expand al in
  Alcotest.(check bool) "client 1 expanded" true
    (List.exists (fun (c, (r : Allocator.range)) -> c = 1 && r.len = 8) grants)

let test_alloc_expand_respects_desired () =
  let al = Allocator.create ~total_pages:8 () in
  let _ = Option.get (Allocator.request al ~client:1 ~desired:3) in
  let grants = Allocator.expand al in
  Alcotest.(check (list (pair int int))) "no over-expansion" []
    (List.map (fun (c, (r : Allocator.range)) -> (c, r.len)) grants)

let test_alloc_release_unknown () =
  let al = Allocator.create ~total_pages:4 () in
  Alcotest.(check bool) "raises" true
    (try
       Allocator.release al ~client:9;
       false
     with Invalid_argument _ -> true)

let test_alloc_shrunk_clients () =
  let al = Allocator.create ~total_pages:4 () in
  let _ = Option.get (Allocator.request al ~client:1 ~desired:4) in
  let _ = Option.get (Allocator.request al ~client:2 ~desired:2) in
  let shrunk = Allocator.shrunk_clients al in
  Alcotest.(check bool) "client 1 is below desire" true
    (List.exists (fun (c, _) -> c = 1) shrunk)

let test_alloc_repack_policy () =
  let al = Allocator.create ~policy:Allocator.Repack_equal ~total_pages:9 () in
  let _ = Option.get (Allocator.request al ~client:1 ~desired:9) in
  let _ = Option.get (Allocator.request al ~client:2 ~desired:9) in
  let r3 = Option.get (Allocator.request al ~client:3 ~desired:9) in
  (* 9 pages over 3 clients: 3 each *)
  Alcotest.(check int) "equal share" 3 r3.len;
  List.iter
    (fun (_, (r : Allocator.range)) -> Alcotest.(check int) "everyone equal" 3 r.len)
    (Allocator.clients al);
  Alcotest.(check bool) "disjoint" true (ranges_cover_and_disjoint al 9)

let test_alloc_repack_exhaustion () =
  let al = Allocator.create ~policy:Allocator.Repack_equal ~total_pages:2 () in
  let _ = Option.get (Allocator.request al ~client:1 ~desired:2) in
  let _ = Option.get (Allocator.request al ~client:2 ~desired:2) in
  Alcotest.(check bool) "third must wait" true
    (Allocator.request al ~client:3 ~desired:1 = None)

(* A shrink storm where the two policies must diverge: c1 holds 8, c2
   holds 4, and a newcomer wants 2.  Halving always shrinks the largest
   holder (c1, re-folding 4 kept pages); Cost_halving notices c2's
   freed half also covers the request and re-folds only 2 kept pages. *)
let test_alloc_cost_halving_picks_cheap_victim () =
  let build policy =
    let al = Allocator.create ~policy ~total_pages:12 () in
    let _ = Option.get (Allocator.request al ~client:1 ~desired:8) in
    let _ = Option.get (Allocator.request al ~client:2 ~desired:4) in
    let r3 = Option.get (Allocator.request al ~client:3 ~desired:2) in
    (al, r3)
  in
  let al_h, r3_h = build Allocator.Halving in
  Alcotest.(check int) "halving shrinks the big holder" 4
    (Option.get (Allocator.allocation al_h ~client:1)).len;
  Alcotest.(check int) "halving leaves c2 alone" 4
    (Option.get (Allocator.allocation al_h ~client:2)).len;
  Alcotest.(check int) "halving grant" 2 r3_h.len;
  let al_c, r3_c = build Allocator.Cost_halving in
  Alcotest.(check int) "cost policy leaves the big holder alone" 8
    (Option.get (Allocator.allocation al_c ~client:1)).len;
  Alcotest.(check int) "cost policy shrinks the cheaper victim" 2
    (Option.get (Allocator.allocation al_c ~client:2)).len;
  Alcotest.(check int) "grant no smaller than halving's" 2 r3_c.len;
  Alcotest.(check bool) "disjoint" true (ranges_cover_and_disjoint al_c 12)

(* When no resident's freed half covers the request, Cost_halving falls
   back to the largest victim — a grant never smaller than Halving's. *)
let test_alloc_cost_halving_fallback () =
  let al = Allocator.create ~policy:Allocator.Cost_halving ~total_pages:12 () in
  let _ = Option.get (Allocator.request al ~client:1 ~desired:8) in
  let _ = Option.get (Allocator.request al ~client:2 ~desired:4) in
  let r3 = Option.get (Allocator.request al ~client:3 ~desired:3) in
  (* c2's freed half is 2 < 3; only halving c1 covers the request *)
  Alcotest.(check int) "big holder halved" 4
    (Option.get (Allocator.allocation al ~client:1)).len;
  Alcotest.(check int) "c2 untouched" 4
    (Option.get (Allocator.allocation al ~client:2)).len;
  Alcotest.(check int) "newcomer served from the freed half" 3 r3.len;
  Alcotest.(check bool) "disjoint" true (ranges_cover_and_disjoint al 12)

let test_alloc_random_sequences () =
  (* property: under any grant/release order and any policy, live
     allocations are non-empty, in-bounds, and pairwise disjoint — and
     every traced Alloc_decision grants a range drawn from the
     alternatives it weighed *)
  let module T = Cgra_trace.Trace in
  List.iter
    (fun seed ->
      let rng = Cgra_util.Rng.create ~seed in
      let total = Cgra_util.Rng.choose rng [| 4; 8; 9; 16 |] in
      let policy =
        Cgra_util.Rng.choose rng
          [| Allocator.Halving; Allocator.Repack_equal; Allocator.Cost_halving |]
      in
      let trace = T.make () in
      let al = Allocator.create ~policy ~trace ~total_pages:total () in
      let next = ref 0 in
      let ctx fmt =
        Printf.ksprintf
          (fun s -> Printf.sprintf "seed %d (%d pages, op %d): %s" seed total !next s)
          fmt
      in
      for op = 0 to 39 do
        next := op;
        let live = List.map fst (Allocator.clients al) in
        (if live <> [] && Cgra_util.Rng.int rng 3 = 0 then
           let c = List.nth live (Cgra_util.Rng.int rng (List.length live)) in
           Allocator.release al ~client:c
         else begin
           let c = !next + 1000 in
           ignore (Allocator.request al ~client:c ~desired:(Cgra_util.Rng.int_in rng 1 total))
         end);
        let cover = Array.make total 0 in
        List.iter
          (fun (c, (r : Allocator.range)) ->
            if r.len < 1 then Alcotest.fail (ctx "client %d holds empty range" c);
            if r.base < 0 || r.base + r.len > total then
              Alcotest.fail (ctx "client %d out of bounds [%d+%d]" c r.base r.len);
            for i = r.base to r.base + r.len - 1 do
              cover.(i) <- cover.(i) + 1
            done)
          (Allocator.clients al);
        Array.iteri
          (fun i c ->
            if c > 1 then Alcotest.fail (ctx "page %d granted to %d clients" i c))
          cover
      done;
      (* every granted decision must offer the grant among its alternatives *)
      List.iter
        (fun (e : T.event) ->
          match e.payload with
          | T.Alloc_decision { granted = Some g; considered; client; _ } ->
              if considered = [] then
                Alcotest.fail
                  (ctx "client %d granted [%d+%d] with no alternatives recorded"
                     client g.T.base g.T.len);
              let covered =
                List.init g.T.len (fun i -> g.T.base + i)
                |> List.for_all (fun pg ->
                       List.exists
                         (fun (_, (r : T.page_range)) ->
                           pg >= r.base && pg < r.base + r.len)
                         considered)
              in
              if not covered then
                Alcotest.fail
                  (ctx "client %d granted [%d+%d] outside every considered range"
                     client g.T.base g.T.len)
          | _ -> ())
        (T.events trace))
    (List.init 30 Fun.id)

let test_os_reconfig_cost_slows () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads = Workload.generate ~seed:21 ~n_threads:8 ~cgra_need:0.875 ~suite () in
  let params = { Os_sim.suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  let free = Os_sim.run params in
  let costly = Os_sim.run ~reconfig_cost:500.0 params in
  Alcotest.(check bool) "reshapes happened" true (free.transformations > 0);
  Alcotest.(check bool) "cost slows the system" true (costly.makespan > free.makespan);
  Alcotest.(check bool) "still terminates" true
    (List.length costly.finishes = List.length free.finishes)

let test_os_reconfig_cost_zero_is_default () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads = Workload.generate ~seed:22 ~n_threads:4 ~cgra_need:0.75 ~suite () in
  let params = { Os_sim.suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  Alcotest.(check (float 0.0)) "explicit zero equals default"
    (Os_sim.run params).makespan
    (Os_sim.run ~reconfig_cost:0.0 params).makespan

let test_os_repack_policy_runs () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads = Workload.generate ~seed:23 ~n_threads:8 ~cgra_need:0.75 ~suite () in
  let params = { Os_sim.suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  let halving = Os_sim.run params in
  let repack = Os_sim.run ~policy:Allocator.Repack_equal params in
  Alcotest.(check int) "all finish" (List.length halving.finishes)
    (List.length repack.finishes);
  Alcotest.(check bool) "repack reshapes at least as much" true
    (repack.transformations >= halving.transformations)

let prop_alloc_invariants =
  QCheck.Test.make ~name:"allocator keeps ranges disjoint and in bounds" ~count:100
    QCheck.(list (pair (int_range 0 5) (int_range 1 8)))
    (fun ops ->
      let total = 8 in
      let al = Allocator.create ~total_pages:total () in
      let active = Hashtbl.create 8 in
      let next_id = ref 0 in
      List.iter
        (fun (kind, amount) ->
          if kind <= 3 then begin
            incr next_id;
            match Allocator.request al ~client:!next_id ~desired:amount with
            | Some _ -> Hashtbl.replace active !next_id ()
            | None -> ()
          end
          else begin
            (match Hashtbl.fold (fun c () _ -> Some c) active None with
            | Some c ->
                Allocator.release al ~client:c;
                Hashtbl.remove active c
            | None -> ());
            ignore (Allocator.expand al)
          end)
        ops;
      ranges_cover_and_disjoint al total
      && List.for_all
           (fun (_, (r : Allocator.range)) -> r.base >= 0 && r.base + r.len <= total)
           (Allocator.clients al))

(* ---------- Binary ---------- *)

let test_binary_compile_suite () =
  let suite = Lazy.force suite_4x4_p4 in
  Alcotest.(check int) "eleven binaries" 11 (List.length suite);
  List.iter
    (fun (b : Binary.t) ->
      Alcotest.(check bool) (b.name ^ " base valid") true
        (Cgra_mapper.Mapping.validate b.base = Ok ());
      Alcotest.(check bool) (b.name ^ " paged valid") true
        (Cgra_mapper.Mapping.validate b.paged = Ok ()))
    suite

let test_binary_iteration_cycles () =
  let suite = Lazy.force suite_4x4_p4 in
  let b = List.find (fun (b : Binary.t) -> b.name = "laplace") suite in
  let n = Binary.pages_used b in
  Alcotest.(check int) "full allocation runs at II_c" (Binary.ii_paged b)
    (Binary.iteration_cycles b ~pages:n);
  Alcotest.(check int) "one page costs factor N"
    (Binary.ii_paged b * n)
    (Binary.iteration_cycles b ~pages:1)

(* ---------- Thread model & workload ---------- *)

let test_thread_model_accessors () =
  let t =
    {
      Thread_model.id = 7;
      segments =
        [
          Thread_model.Cpu 100;
          Thread_model.Kernel { kernel = "mpeg"; iterations = 10 };
          Thread_model.Cpu 50;
          Thread_model.Kernel { kernel = "sobel"; iterations = 5 };
          Thread_model.Kernel { kernel = "mpeg"; iterations = 3 };
        ];
    }
  in
  Alcotest.(check (list string)) "kernels" [ "mpeg"; "sobel" ] (Thread_model.kernel_names t);
  Alcotest.(check int) "cpu" 150 (Thread_model.total_cpu t);
  Alcotest.(check (list (pair string int))) "iterations"
    [ ("mpeg", 13); ("sobel", 5) ]
    (Thread_model.cgra_iterations t)

let test_workload_deterministic () =
  let suite = Lazy.force suite_4x4_p4 in
  let a = Workload.generate ~seed:3 ~n_threads:4 ~cgra_need:0.75 ~suite () in
  let b = Workload.generate ~seed:3 ~n_threads:4 ~cgra_need:0.75 ~suite () in
  Alcotest.(check bool) "same workload" true (a = b);
  let c = Workload.generate ~seed:4 ~n_threads:4 ~cgra_need:0.75 ~suite () in
  Alcotest.(check bool) "seed changes workload" false (a = c)

let test_workload_need_fraction () =
  let suite = Lazy.force suite_4x4_p4 in
  List.iter
    (fun need ->
      let threads = Workload.generate ~seed:11 ~n_threads:8 ~cgra_need:need ~suite () in
      let kernel_cycles =
        List.fold_left
          (fun acc (t : Thread_model.t) ->
            List.fold_left
              (fun acc (name, iters) ->
                let b = List.find (fun (b : Binary.t) -> b.name = name) suite in
                acc + (iters * Binary.ii_base b))
              acc (Thread_model.cgra_iterations t))
          0 threads
      in
      let cpu_cycles =
        List.fold_left (fun acc t -> acc + Thread_model.total_cpu t) 0 threads
      in
      let measured =
        float_of_int kernel_cycles /. float_of_int (kernel_cycles + cpu_cycles)
      in
      Alcotest.(check bool)
        (Printf.sprintf "need %.3f measured %.3f" need measured)
        true
        (Float.abs (measured -. need) < 0.08))
    [ 0.5; 0.75; 0.875 ]

let test_workload_invalid_need () =
  let suite = Lazy.force suite_4x4_p4 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Workload.generate ~seed:0 ~n_threads:1 ~cgra_need:1.0 ~suite ());
       false
     with Invalid_argument _ -> true)

(* ---------- Os_sim ---------- *)

let single_kernel_thread ?(id = 0) name iterations =
  { Thread_model.id; segments = [ Thread_model.Kernel { kernel = name; iterations } ] }

let test_os_single_thread_times () =
  let suite = Lazy.force suite_4x4_p4 in
  let b = List.find (fun (b : Binary.t) -> b.name = "laplace") suite in
  let threads = [ single_kernel_thread "laplace" 10 ] in
  let single =
    Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Single }
  in
  Alcotest.(check (float 0.01)) "single runs at II_b"
    (float_of_int (10 * Binary.ii_base b))
    single.makespan;
  let multi = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  Alcotest.(check (float 0.01)) "multi alone runs at II_c"
    (float_of_int (10 * Binary.ii_paged b))
    multi.makespan

let test_os_single_mode_serializes () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads =
    [ single_kernel_thread ~id:0 "laplace" 10; single_kernel_thread ~id:1 "laplace" 10 ]
  in
  let r = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Single } in
  let b = List.find (fun (b : Binary.t) -> b.name = "laplace") suite in
  Alcotest.(check (float 0.01)) "serialized"
    (float_of_int (2 * 10 * Binary.ii_base b))
    r.makespan;
  Alcotest.(check int) "one stall" 1 r.stalls

let test_os_multi_mode_overlaps () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads =
    [ single_kernel_thread ~id:0 "gsr" 20; single_kernel_thread ~id:1 "gsr" 20 ]
  in
  let b = List.find (fun (b : Binary.t) -> b.name = "gsr") suite in
  (* gsr uses 1 page: both threads run side by side at full paged speed *)
  let r = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  Alcotest.(check (float 0.01)) "perfect overlap"
    (float_of_int (20 * Binary.ii_paged b))
    r.makespan;
  Alcotest.(check int) "no stalls" 0 r.stalls

let test_os_shrink_on_contention () =
  let suite = Lazy.force suite_4x4_p4 in
  (* two threads both wanting the whole 4-page fabric *)
  let threads =
    [ single_kernel_thread ~id:0 "swim" 20; single_kernel_thread ~id:1 "swim" 20 ]
  in
  let r = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  Alcotest.(check bool) "transformations happened" true (r.transformations > 0);
  (* space multiplexing is never worse than full serialization at paged
     speed (equal when both threads need the whole fabric: each runs at
     half speed on half the pages) *)
  let b = List.find (fun (b : Binary.t) -> b.name = "swim") suite in
  Alcotest.(check bool) "no worse than serialization" true
    (r.makespan <= float_of_int (2 * 20 * Binary.ii_paged b) +. 0.01)

let test_os_total_ops_mode_independent () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads = Workload.generate ~seed:5 ~n_threads:6 ~cgra_need:0.75 ~suite () in
  let s = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Single } in
  let m = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  Alcotest.(check (float 0.001)) "same kernel work" s.total_ops m.total_ops

let test_os_all_threads_finish () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads = Workload.generate ~seed:9 ~n_threads:16 ~cgra_need:0.875 ~suite () in
  let r = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  Alcotest.(check int) "all finish" 16 (List.length r.finishes);
  List.iter
    (fun (_, f) -> Alcotest.(check bool) "finite finish" true (f > 0.0 && f <= r.makespan))
    r.finishes

let test_os_utilization_bounds () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads = Workload.generate ~seed:2 ~n_threads:8 ~cgra_need:0.75 ~suite () in
  List.iter
    (fun mode ->
      let r = Os_sim.run { suite; threads; total_pages = 4; mode } in
      Alcotest.(check bool) "utilization in [0,1]" true
        (r.page_utilization >= 0.0 && r.page_utilization <= 1.0 +. 1e-9))
    [ Os_sim.Single; Os_sim.Multi ]

let test_os_multithreading_wins_under_load () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads = Workload.generate ~seed:1 ~n_threads:8 ~cgra_need:0.875 ~suite () in
  let s = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Single } in
  let m = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  Alcotest.(check bool) "positive improvement" true
    (Os_sim.improvement_percent ~single:s ~multi:m > 0.0)

let test_os_deterministic () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads = Workload.generate ~seed:13 ~n_threads:4 ~cgra_need:0.5 ~suite () in
  let r1 = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  let r2 = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  Alcotest.(check (float 0.0)) "same makespan" r1.makespan r2.makespan

let test_os_multi_exact_stalls () =
  (* two late arrivals contend for a fully occupied fabric; each must be
     counted stalled exactly once.  Regression: a failed restart attempt
     from the waiter queue used to re-enqueue the thread and count a
     second stall for it. *)
  let suite = Lazy.force suite_4x4_p4 in
  let hold id = single_kernel_thread ~id "gsr" 40 in
  let late id delay =
    {
      Thread_model.id;
      segments =
        [ Thread_model.Cpu delay; Thread_model.Kernel { kernel = "gsr"; iterations = 1 } ];
    }
  in
  (* gsr occupies one page: threads 0-3 fill all four pages before the
     late threads ask, and all four release at the same instant, so the
     second waiter's first restart attempt fails *)
  let threads = [ hold 0; hold 1; hold 2; hold 3; late 4 5; late 5 7 ] in
  let r = Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Multi } in
  Alcotest.(check int) "all finish" 6 (List.length r.finishes);
  Alcotest.(check int) "exactly two stalls" 2 r.stalls

let test_os_unknown_kernel () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads = [ single_kernel_thread "nonexistent" 3 ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Os_sim.run { suite; threads; total_pages = 4; mode = Os_sim.Single });
       false
     with Invalid_argument _ -> true)

(* ---------- Metrics ---------- *)

let test_metrics_ipc () =
  Alcotest.(check (float 1e-9)) "ipc" 4.5 (Metrics.ipc_of_kernel ~ops:9 ~ii:2);
  Alcotest.(check (float 1e-9)) "utilization" 0.28125
    (Metrics.utilization_of_kernel ~ops:9 ~ii:2 ~pes:16)

let test_metrics_identity () =
  let kernels = [ (9, 2); (14, 3); (22, 4) ] in
  Alcotest.(check bool) "IPC = N * U_a" true
    (Metrics.ipc_identity_gap ~pes:16 kernels < 1e-9)

let test_metrics_aggregate () =
  Alcotest.(check (float 1e-9)) "sum of rates" 7.0
    (Metrics.aggregate_ipc [ (8, 2); (9, 3) ])

(* ---------- Page_schedule ---------- *)

let test_page_schedule_of_mapping () =
  let suite = Lazy.force suite_4x4_p4 in
  let b = List.find (fun (b : Binary.t) -> b.name = "laplace") suite in
  let ps = Page_schedule.of_mapping b.paged in
  Alcotest.(check int) "ii" (Binary.ii_paged b) ps.ii;
  Alcotest.(check int) "pages" (Binary.pages_used b) ps.n_pages;
  Alcotest.(check bool) "occupancy in (0,1]" true
    (Page_schedule.occupancy ps > 0.0 && Page_schedule.occupancy ps <= 1.0);
  (* all non-const ops appear exactly once *)
  let total =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun a l -> a + List.length l) acc row)
      0 ps.ops
  in
  let non_const =
    List.length
      (List.filter
         (fun (n : Cgra_dfg.Graph.node) ->
           match n.op with Cgra_dfg.Op.Const _ -> false | _ -> true)
         (Cgra_dfg.Graph.nodes b.graph))
  in
  Alcotest.(check int) "ops accounted" non_const total

let test_page_schedule_relocated_base () =
  (* regression: of_mapping sized its rows by the number of used pages
     but indexed them by absolute page id, crashing on any mapping whose
     pages do not start at page 0 *)
  let suite = Lazy.force suite_4x4_p4 in
  let b = List.find (fun (b : Binary.t) -> b.name = "mpeg") suite in
  let n = Binary.pages_used b in
  Alcotest.(check bool) "kernel leaves room to relocate" true (4 > n);
  let base = 4 - n in
  let relocated =
    match Transform.fold ~base_page:base ~target_pages:n b.paged with
    | Ok sh ->
        Alcotest.(check bool) "relocation PE-exact" true sh.Transform.pe_exact;
        { sh.Transform.mapping with Cgra_mapper.Mapping.paged = true }
    | Error e -> Alcotest.failf "relocation failed: %s" e
  in
  let ps = Page_schedule.of_mapping relocated in
  Alcotest.(check int) "one row per used page" n ps.n_pages;
  Alcotest.(check (array int)) "absolute page ids"
    (Array.init n (fun i -> base + i))
    ps.page_ids;
  let total =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun a l -> a + List.length l) acc row)
      0 ps.ops
  in
  let non_const =
    List.length
      (List.filter
         (fun (nd : Cgra_dfg.Graph.node) ->
           match nd.op with Cgra_dfg.Op.Const _ -> false | _ -> true)
         (Cgra_dfg.Graph.nodes b.graph))
  in
  Alcotest.(check int) "ops accounted" non_const total

let test_page_schedule_pp () =
  let suite = Lazy.force suite_4x4_p4 in
  let b = List.hd suite in
  let ps = Page_schedule.of_mapping b.paged in
  let s = Format.asprintf "%a" Page_schedule.pp ps in
  Alcotest.(check bool) "non-empty rendering" true (String.length s > 20)

(* ---------- Engine edges (the farm coordinator's contract) ---------- *)

let kernel_thread ?(iterations = 4) id =
  {
    Thread_model.id;
    segments = [ Thread_model.Kernel { kernel = "mpeg"; iterations } ];
  }

let fresh_engine () =
  Os_sim.Engine.create ~suite:(Lazy.force suite_4x4_p4) ~total_pages:4
    ~mode:Os_sim.Multi ()

let test_engine_rejects_out_of_order_submit () =
  let e = fresh_engine () in
  Os_sim.Engine.submit e ~at:100.0 (kernel_thread 1);
  (* an arrival before the previous submit's horizon must raise *)
  (try
     Os_sim.Engine.submit e ~at:50.0 (kernel_thread 2);
     Alcotest.fail "submit before the horizon did not raise"
   with Invalid_argument _ -> ());
  (* ... and so must an arrival beyond a still-pending internal event:
     the caller has to settle the engine up to [at] first *)
  (match Os_sim.Engine.next_event e with
  | None -> Alcotest.fail "submitted kernel thread queued no event"
  | Some te -> (
      try
        Os_sim.Engine.submit e ~at:(te +. 1000.0) (kernel_thread 3);
        Alcotest.fail "submit past a pending event did not raise"
      with Invalid_argument _ -> ()));
  (* the failed submits left the engine usable: thread 1 still drains *)
  Os_sim.Engine.drain e;
  Alcotest.(check int) "only the valid thread ran" 1
    (List.length (Os_sim.Engine.result e).Os_sim.finishes)

let test_engine_drain_empty () =
  let e = fresh_engine () in
  (* draining an engine with nothing submitted is a no-op, not an error *)
  Os_sim.Engine.drain e;
  Alcotest.(check bool) "still idle" true (Os_sim.Engine.next_event e = None);
  Alcotest.(check int) "nothing in flight" 0 (Os_sim.Engine.in_flight e);
  let r = Os_sim.Engine.result e in
  Alcotest.(check int) "no finishes" 0 (List.length r.Os_sim.finishes);
  Alcotest.check (Alcotest.float 0.0) "zero makespan" 0.0 r.Os_sim.makespan

let test_engine_run_until_inclusive () =
  (* [run_until t] steps events at exactly [t] — the epoch-boundary case
     the parallel farm coordinator depends on: a shard settled to the
     sync point must have consumed every event landing on it *)
  let e = fresh_engine () in
  Os_sim.Engine.submit e ~at:0.0 (kernel_thread 1);
  match Os_sim.Engine.next_event e with
  | None -> Alcotest.fail "submitted kernel thread queued no event"
  | Some te ->
      Alcotest.(check bool) "first iteration lands after time 0" true (te > 0.0);
      (* a bound strictly before the event leaves it pending *)
      Os_sim.Engine.run_until e (te /. 2.0);
      Alcotest.(check (option (float 0.0))) "strictly-before bound is exclusive"
        (Some te) (Os_sim.Engine.next_event e);
      (* a bound exactly at the event consumes it *)
      Os_sim.Engine.run_until e te;
      (match Os_sim.Engine.next_event e with
      | Some te' when te' <= te ->
          Alcotest.failf "event at the bound survived run_until (next %g <= %g)"
            te' te
      | Some _ | None -> ());
      Os_sim.Engine.drain e;
      Alcotest.(check int) "thread finished" 0 (Os_sim.Engine.in_flight e)

let () =
  Alcotest.run "runtime"
    [
      ( "allocator",
        [
          Alcotest.test_case "simple request" `Quick test_alloc_simple_request;
          Alcotest.test_case "fits unused portion" `Quick test_alloc_fits_unused_portion;
          Alcotest.test_case "halving preemption" `Quick test_alloc_halving_preemption;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "release merges" `Quick test_alloc_release_merges;
          Alcotest.test_case "expand after release" `Quick test_alloc_expand_after_release;
          Alcotest.test_case "expand respects desired" `Quick
            test_alloc_expand_respects_desired;
          Alcotest.test_case "release unknown" `Quick test_alloc_release_unknown;
          Alcotest.test_case "shrunk clients" `Quick test_alloc_shrunk_clients;
          Alcotest.test_case "repack policy" `Quick test_alloc_repack_policy;
          Alcotest.test_case "repack exhaustion" `Quick test_alloc_repack_exhaustion;
          Alcotest.test_case "cost halving picks cheap victim" `Quick
            test_alloc_cost_halving_picks_cheap_victim;
          Alcotest.test_case "cost halving fallback" `Quick
            test_alloc_cost_halving_fallback;
          Alcotest.test_case "random sequences stay disjoint" `Quick
            test_alloc_random_sequences;
          QCheck_alcotest.to_alcotest prop_alloc_invariants;
        ] );
      ( "binary",
        [
          Alcotest.test_case "compile suite" `Quick test_binary_compile_suite;
          Alcotest.test_case "iteration cycles" `Quick test_binary_iteration_cycles;
        ] );
      ( "workload",
        [
          Alcotest.test_case "thread model accessors" `Quick test_thread_model_accessors;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "need fraction" `Quick test_workload_need_fraction;
          Alcotest.test_case "invalid need" `Quick test_workload_invalid_need;
        ] );
      ( "os-sim",
        [
          Alcotest.test_case "single thread times" `Quick test_os_single_thread_times;
          Alcotest.test_case "single mode serializes" `Quick test_os_single_mode_serializes;
          Alcotest.test_case "multi mode overlaps" `Quick test_os_multi_mode_overlaps;
          Alcotest.test_case "shrink on contention" `Quick test_os_shrink_on_contention;
          Alcotest.test_case "total ops mode-independent" `Quick
            test_os_total_ops_mode_independent;
          Alcotest.test_case "all threads finish" `Quick test_os_all_threads_finish;
          Alcotest.test_case "utilization bounds" `Quick test_os_utilization_bounds;
          Alcotest.test_case "multithreading wins under load" `Quick
            test_os_multithreading_wins_under_load;
          Alcotest.test_case "deterministic" `Quick test_os_deterministic;
          Alcotest.test_case "exact stall accounting" `Quick test_os_multi_exact_stalls;
          Alcotest.test_case "unknown kernel" `Quick test_os_unknown_kernel;
          Alcotest.test_case "reconfig cost slows" `Quick test_os_reconfig_cost_slows;
          Alcotest.test_case "reconfig zero default" `Quick
            test_os_reconfig_cost_zero_is_default;
          Alcotest.test_case "repack policy runs" `Quick test_os_repack_policy_runs;
        ] );
      ( "engine",
        [
          Alcotest.test_case "rejects out-of-order submit" `Quick
            test_engine_rejects_out_of_order_submit;
          Alcotest.test_case "drain on empty engine" `Quick test_engine_drain_empty;
          Alcotest.test_case "run_until inclusive at event time" `Quick
            test_engine_run_until_inclusive;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "ipc" `Quick test_metrics_ipc;
          Alcotest.test_case "IPC = N*U identity" `Quick test_metrics_identity;
          Alcotest.test_case "aggregate" `Quick test_metrics_aggregate;
        ] );
      ( "page-schedule",
        [
          Alcotest.test_case "of_mapping" `Quick test_page_schedule_of_mapping;
          Alcotest.test_case "relocated base" `Quick test_page_schedule_relocated_base;
          Alcotest.test_case "pp" `Quick test_page_schedule_pp;
        ] );
    ]
