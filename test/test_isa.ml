open Cgra_arch
open Cgra_mapper
open Cgra_isa

let arch size page_pes = Option.get (Cgra.standard ~size ~page_pes)

let map_ok kind a g =
  match Scheduler.map kind a g with
  | Ok m -> m
  | Error e -> Alcotest.failf "map: %s" e

(* ---------- Regalloc ---------- *)

let test_regalloc_values () =
  let k = Cgra_kernels.Kernels.find_exn "laplace" in
  let m = map_ok Unconstrained (arch 4 4) k.graph in
  let values = Regalloc.values_of_mapping m in
  Alcotest.(check bool) "some values" true (List.length values > 5);
  List.iter
    (fun (v : Regalloc.value) ->
      Alcotest.(check bool) "last >= born" true (v.last >= v.born))
    values

let test_regalloc_allocates_suite () =
  List.iter
    (fun (k : Cgra_kernels.Kernels.t) ->
      let m = map_ok Paged (arch 4 4) k.graph in
      match Regalloc.allocate m with
      | Ok ra ->
          Alcotest.(check bool) (k.name ^ " within capacity") true
            (List.for_all (fun (_, n) -> n <= ra.capacity) (Regalloc.pressure ra))
      | Error e -> Alcotest.failf "%s: %s" k.name e)
    Cgra_kernels.Kernels.all

(* The allocator's own invariant, checked directly: no two value
   instances of one PE ever occupy the same physical register while both
   are live.  We brute-force a window of iterations. *)
let test_regalloc_no_physical_clash () =
  let k = Cgra_kernels.Kernels.find_exn "swim" in
  let m = map_ok Paged (arch 4 4) k.graph in
  match Regalloc.allocate m with
  | Error e -> Alcotest.fail e
  | Ok ra ->
      let cap = ra.capacity in
      let by_pe = Hashtbl.create 16 in
      List.iter
        (fun (v : Regalloc.value) ->
          Hashtbl.replace by_pe v.pe (v :: Option.value ~default:[] (Hashtbl.find_opt by_pe v.pe)))
        ra.values;
      Hashtbl.iter
        (fun _ values ->
          (* occupancy.(phys) per cycle over a window *)
          let horizon = 12 * m.ii in
          for cycle = 0 to horizon do
            let holders = Hashtbl.create 8 in
            List.iter
              (fun (v : Regalloc.value) ->
                let o = Option.get (Regalloc.offset ra v.key) in
                (* every iteration instance alive at [cycle] *)
                let rec each i =
                  let b = v.born + (i * m.ii) and l = v.last + (i * m.ii) in
                  if b > cycle then ()
                  else begin
                    (if cycle <= l then
                       let phys = (o + (v.born / m.ii) + i) mod cap in
                       match Hashtbl.find_opt holders phys with
                       | Some other when other <> v.key ->
                           Alcotest.failf "physical clash at cycle %d" cycle
                       | Some _ | None -> Hashtbl.replace holders phys v.key);
                    each (i + 1)
                  end
                in
                each 0)
              values
          done)
        by_pe

let test_regalloc_overflow_detected () =
  let pages = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  let tiny = Cgra.make ~rf_capacity:1 pages in
  let k = Cgra_kernels.Kernels.find_exn "sobel" in
  (* mapping onto generous arch, then re-bind to a 1-register fabric *)
  let m = map_ok Unconstrained (arch 4 4) k.graph in
  let m = { m with Mapping.arch = tiny } in
  match Regalloc.allocate m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "1-register file cannot hold sobel"

let test_logical_for_read_rotation () =
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let m = map_ok Unconstrained (arch 4 4) k.graph in
  match Regalloc.allocate m with
  | Error e -> Alcotest.fail e
  | Ok ra ->
      (* same-stage read names the value's own offset *)
      let v = List.hd ra.values in
      let o = Option.get (Regalloc.offset ra v.Regalloc.key) in
      Alcotest.(check (option int)) "same stage" (Some o)
        (Regalloc.logical_for_read ra ~ii:m.ii ~holder_born:v.Regalloc.born
           ~read_time:v.Regalloc.born v.Regalloc.key);
      (* one stage later, the logical name shifts back by one *)
      let expect = ((o - 1) mod ra.capacity + ra.capacity) mod ra.capacity in
      Alcotest.(check (option int)) "one rotation" (Some expect)
        (Regalloc.logical_for_read ra ~ii:m.ii ~holder_born:v.Regalloc.born
           ~read_time:(v.Regalloc.born + m.ii) v.Regalloc.key)

(* ---------- Config ---------- *)

let test_config_encode_suite () =
  List.iter
    (fun (k : Cgra_kernels.Kernels.t) ->
      let m = map_ok Paged (arch 4 4) k.graph in
      match Config.encode m with
      | Ok img ->
          let non_const =
            List.length
              (List.filter
                 (fun (n : Cgra_dfg.Graph.node) ->
                   match n.op with Cgra_dfg.Op.Const _ -> false | _ -> true)
                 (Cgra_dfg.Graph.nodes k.graph))
          in
          Alcotest.(check bool)
            (k.name ^ " contexts cover ops and hops")
            true
            (Config.context_count img >= non_const);
          Alcotest.(check int) (k.name ^ " words") (16 * img.Config.ii)
            (Config.words img)
      | Error e -> Alcotest.failf "%s: %s" k.name e)
    Cgra_kernels.Kernels.all

let test_config_disassembly () =
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let m = map_ok Unconstrained (arch 4 4) k.graph in
  let img = Result.get_ok (Config.encode m) in
  let s = Format.asprintf "%a" Config.pp img in
  Alcotest.(check bool) "mentions PEs" true (String.length s > 50)

(* context images survive the wire codec byte-for-byte, and the decoded
   image drives the executor to the same result as the original *)
let test_config_codec_roundtrip () =
  List.iter
    (fun (k : Cgra_kernels.Kernels.t) ->
      let m = map_ok Paged (arch 4 4) k.graph in
      let img = Result.get_ok (Config.encode m) in
      let bytes = Codec.config_bytes img in
      match Codec.config_of_bytes bytes with
      | Error e -> Alcotest.failf "%s decode: %s" k.name e
      | Ok img' ->
          Alcotest.(check bool)
            (k.name ^ " re-encode is byte-identical")
            true
            (Codec.config_bytes img' = bytes);
          let mem = Cgra_kernels.Kernels.init_memory k in
          let mem' = Cgra_dfg.Memory.copy mem in
          let rep = Exec_image.run img mem ~iterations:8 in
          let rep' = Exec_image.run img' mem' ~iterations:8 in
          Alcotest.(check bool) (k.name ^ " same report") true (rep = rep');
          Alcotest.(check bool)
            (k.name ^ " same memory")
            true
            (Cgra_dfg.Memory.diff mem mem' = []))
    Cgra_kernels.Kernels.all

let test_config_codec_rejects_garbage () =
  let k = Cgra_kernels.Kernels.find_exn "sor" in
  let m = map_ok Paged (arch 4 4) k.graph in
  let good = Codec.config_bytes (Result.get_ok (Config.encode m)) in
  List.iter
    (fun bytes ->
      match Codec.config_of_bytes bytes with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "decoded %d hostile bytes" (String.length bytes))
    [
      "";
      "\001";
      String.sub good 0 (String.length good / 3);
      String.sub good 0 (String.length good - 1);
      good ^ "\000";
    ]

(* ---------- Exec_image: the decoder machine vs the oracle ---------- *)

let test_image_runs_suite kind () =
  List.iter
    (fun (k : Cgra_kernels.Kernels.t) ->
      let m = map_ok kind (arch 4 4) k.graph in
      let mem = Cgra_kernels.Kernels.init_memory k in
      match Exec_image.check m mem ~iterations:24 with
      | Ok r ->
          Alcotest.(check bool) (k.name ^ " fired contexts") true (r.fired > 0)
      | Error es -> Alcotest.failf "%s: %s" k.name (List.hd es))
    Cgra_kernels.Kernels.all

let test_image_runs_folded () =
  List.iter
    (fun name ->
      let k = Cgra_kernels.Kernels.find_exn name in
      let m = map_ok Paged (arch 4 4) k.graph in
      let rec ladder t =
        if t >= 1 then begin
          (match Cgra_core.Transform.fold ~target_pages:t m with
          | Ok sh when sh.pe_exact -> (
              let mem = Cgra_kernels.Kernels.init_memory k in
              match Exec_image.check sh.mapping mem ~iterations:16 with
              | Ok _ -> ()
              | Error es -> Alcotest.failf "%s fold%d: %s" name t (List.hd es))
          | Ok _ | Error _ -> ());
          ladder (t / 2)
        end
      in
      ladder (Mapping.n_pages_used m))
    [ "mpeg"; "sor"; "swim"; "histeq" ]

let test_image_zero_iterations () =
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let m = map_ok Unconstrained (arch 4 4) k.graph in
  let img = Result.get_ok (Config.encode m) in
  let r = Exec_image.run img (Cgra_kernels.Kernels.init_memory k) ~iterations:0 in
  Alcotest.(check int) "no cycles" 0 r.cycles;
  Alcotest.(check int) "nothing fired" 0 r.fired

let test_image_squashes_prologue () =
  (* a pipelined schedule has stage > 0 somewhere, so the first cycles
     must squash *)
  let k = Cgra_kernels.Kernels.find_exn "yuv2rgb" in
  let m = map_ok Unconstrained (arch 4 4) k.graph in
  let img = Result.get_ok (Config.encode m) in
  let r = Exec_image.run img (Cgra_kernels.Kernels.init_memory k) ~iterations:8 in
  Alcotest.(check bool) "squashed prologue/epilogue slots" true (r.squashed > 0)

let prop_image_synthetic =
  QCheck.Test.make ~name:"synthetic kernels encode and execute bit-exact" ~count:15
    QCheck.(int_range 0 2_000)
    (fun seed ->
      let cfg =
        {
          Cgra_kernels.Synthetic.n_ops = 9 + (seed mod 8);
          mem_fraction = 0.3;
          recurrence = seed mod 3 = 0;
        }
      in
      let g = Cgra_kernels.Synthetic.generate ~seed cfg in
      match Scheduler.map Paged (arch 4 4) g with
      | Error _ -> false
      | Ok m -> (
          let mem = Cgra_kernels.Synthetic.memory_for ~seed g in
          match Exec_image.check m mem ~iterations:10 with
          | Ok _ -> true
          | Error _ -> false))

let () =
  Alcotest.run "isa"
    [
      ( "regalloc",
        [
          Alcotest.test_case "values of mapping" `Quick test_regalloc_values;
          Alcotest.test_case "allocates the suite" `Quick test_regalloc_allocates_suite;
          Alcotest.test_case "no physical clash" `Quick test_regalloc_no_physical_clash;
          Alcotest.test_case "overflow detected" `Quick test_regalloc_overflow_detected;
          Alcotest.test_case "rotation correction" `Quick test_logical_for_read_rotation;
        ] );
      ( "config",
        [
          Alcotest.test_case "encode suite" `Quick test_config_encode_suite;
          Alcotest.test_case "disassembly" `Quick test_config_disassembly;
          Alcotest.test_case "wire codec roundtrip" `Quick
            test_config_codec_roundtrip;
          Alcotest.test_case "wire codec rejects garbage" `Quick
            test_config_codec_rejects_garbage;
        ] );
      ( "exec-image",
        [
          Alcotest.test_case "baseline suite vs oracle" `Quick
            (test_image_runs_suite Scheduler.Unconstrained);
          Alcotest.test_case "paged suite vs oracle" `Quick
            (test_image_runs_suite Scheduler.Paged);
          Alcotest.test_case "folded schedules" `Quick test_image_runs_folded;
          Alcotest.test_case "zero iterations" `Quick test_image_zero_iterations;
          Alcotest.test_case "squashes prologue" `Quick test_image_squashes_prologue;
          QCheck_alcotest.to_alcotest prop_image_synthetic;
        ] );
    ]
