open Cgra_arch
open Cgra_mapper
open Cgra_core

let arch size page_pes = Option.get (Cgra.standard ~size ~page_pes)

let map_ok a name =
  let k = Cgra_kernels.Kernels.find_exn name in
  match Scheduler.map Paged a k.graph with
  | Ok m -> m
  | Error e -> Alcotest.failf "map %s: %s" name e

(* place kernels side by side through the allocator + fold *)
let residents a names =
  let al = Allocator.create ~total_pages:(Cgra.n_pages a) () in
  List.mapi
    (fun i name ->
      let m = map_ok a name in
      let n = Mapping.n_pages_used m in
      match Allocator.request al ~client:i ~desired:n with
      | None -> Alcotest.failf "no pages for %s" name
      | Some r -> (
          match
            Transform.fold ~base_page:r.Allocator.base ~target_pages:r.Allocator.len m
          with
          | Ok sh -> (name, sh)
          | Error e -> Alcotest.failf "fold %s: %s" name e))
    names

let test_disjoint_residents_pass () =
  let a = arch 8 4 in
  let rs = residents a [ "mpeg"; "gsr"; "wavelet" ] in
  match Cgra_sim.Coexec.check ~check_mem:false (List.map (fun (_, sh) -> sh.Transform.mapping) rs) with
  | Ok rep ->
      Alcotest.(check int) "residents" 3 rep.residents;
      Alcotest.(check bool) "aggregate IPC positive" true (rep.ipc > 0.0);
      Alcotest.(check bool) "utilization in (0,1]" true
        (rep.utilization > 0.0 && rep.utilization <= 1.0)
  | Error es -> Alcotest.failf "check failed: %s" (List.hd es)

let test_overlap_detected () =
  let a = arch 8 4 in
  let m = map_ok a "mpeg" in
  (* the same mapping twice occupies the same PEs *)
  match Cgra_sim.Coexec.check ~check_mem:false [ m; m ] with
  | Error es ->
      Alcotest.(check bool) "mentions sharing" true
        (List.exists
           (fun e ->
             let has sub s =
               let n = String.length sub in
               let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
               go 0
             in
             has "share PE" e)
           es)
  | Ok _ -> Alcotest.fail "shared PEs must be rejected"

let test_empty_rejected () =
  match Cgra_sim.Coexec.check [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty resident list"

let test_hyperperiod_lcm () =
  let a = arch 8 4 in
  let rs = residents a [ "mpeg"; "sor" ] in
  match Cgra_sim.Coexec.check ~check_mem:false (List.map (fun (_, sh) -> sh.Transform.mapping) rs) with
  | Ok rep ->
      let iis = List.map (fun (_, sh) -> sh.Transform.mapping.Mapping.ii) rs in
      List.iter
        (fun ii -> Alcotest.(check int) "divides hyperperiod" 0 (rep.hyperperiod mod ii))
        iis
  | Error es -> Alcotest.failf "%s" (List.hd es)

let test_coresident_simulation () =
  let a = arch 8 4 in
  let rs = residents a [ "mpeg"; "gsr"; "wavelet"; "histeq" ] in
  let exact =
    List.filter (fun (_, sh) -> sh.Transform.pe_exact) rs
    |> List.map (fun (name, sh) ->
           ( sh.Transform.mapping,
             Cgra_kernels.Kernels.init_memory (Cgra_kernels.Kernels.find_exn name) ))
  in
  Alcotest.(check bool) "at least two exact residents" true (List.length exact >= 2);
  match Cgra_sim.Coexec.simulate exact ~iterations:20 with
  | Ok () -> ()
  | Error es -> Alcotest.failf "simulation: %s" (List.hd es)

let test_bus_check_over_hyperperiod () =
  (* two manual single-op mappings on different pages but the same row
     exceed a 1-port bus when their slots align *)
  let pages = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  let a = Cgra.make ~mem_ports_per_row:1 pages in
  let g =
    Cgra_dfg.Graph.create ~name:"ld"
      ~ops:[ Cgra_dfg.Op.Load { array = "x"; offset = 0; stride = 1 } ]
      ~edges:[]
  in
  let mk col =
    {
      Mapping.arch = a;
      graph = g;
      ii = 1;
      placements = [| Some { Mapping.pe = Coord.make ~row:0 ~col; time = 0 } |];
      routes = [];
      paged = false;
    }
  in
  (match Cgra_sim.Coexec.check [ mk 0; mk 2 ] with
  | Error es ->
      Alcotest.(check bool) "bus over-subscription reported" true
        (List.exists (fun e -> String.length e > 0) es)
  | Ok _ -> Alcotest.fail "1-port bus cannot serve two loads per cycle");
  match Cgra_sim.Coexec.check ~check_mem:false [ mk 0; mk 2 ] with
  | Ok _ -> ()
  | Error es -> Alcotest.failf "check_mem:false should pass: %s" (List.hd es)

let has_substring sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_mixed_fabrics_rejected () =
  (* residents compiled for different fabrics can never be melded *)
  let m4 = map_ok (arch 4 4) "gsr" in
  let m8 = map_ok (arch 8 4) "gsr" in
  match Cgra_sim.Coexec.check ~check_mem:false [ m4; m8 ] with
  | Error es ->
      Alcotest.(check bool) "names the fabric mismatch" true
        (List.exists (has_substring "different fabrics") es)
  | Ok _ -> Alcotest.fail "mixed fabrics must be rejected"

let test_single_resident () =
  (* a one-element set degenerates to the plain single-mapping case:
     accepted, with the hyperperiod equal to the resident's own II *)
  let a = arch 8 4 in
  let m = map_ok a "sor" in
  match Cgra_sim.Coexec.check ~check_mem:false [ m ] with
  | Ok rep ->
      Alcotest.(check int) "one resident" 1 rep.residents;
      Alcotest.(check int) "hyperperiod is its own II" m.Mapping.ii rep.hyperperiod
  | Error es -> Alcotest.failf "single resident rejected: %s" (List.hd es)

let test_bus_collision_only_at_hyperperiod () =
  (* IIs 2 and 3, slots 0 and 2: neither resident alone saturates the
     bus and their slots never align within either II, yet at cycle 2 of
     the 6-cycle hyperperiod both issue on row 0 of a 1-port bus *)
  let pages = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  let a = Cgra.make ~mem_ports_per_row:1 pages in
  let g =
    Cgra_dfg.Graph.create ~name:"ld"
      ~ops:[ Cgra_dfg.Op.Load { array = "x"; offset = 0; stride = 1 } ]
      ~edges:[]
  in
  let mk ~ii ~col ~time =
    {
      Mapping.arch = a;
      graph = g;
      ii;
      placements = [| Some { Mapping.pe = Coord.make ~row:0 ~col; time } |];
      routes = [];
      paged = false;
    }
  in
  let m1 = mk ~ii:2 ~col:0 ~time:0 in
  let m2 = mk ~ii:3 ~col:2 ~time:2 in
  (match Cgra_sim.Coexec.check [ m1; m2 ] with
  | Error es ->
      Alcotest.(check bool) "over-subscription names a cycle" true
        (List.exists (has_substring "memory ops") es)
  | Ok _ -> Alcotest.fail "cycle-2 collision must be rejected");
  match Cgra_sim.Coexec.check ~check_mem:false [ m1; m2 ] with
  | Ok rep -> Alcotest.(check int) "hyperperiod lcm(2,3)" 6 rep.hyperperiod
  | Error es -> Alcotest.failf "check_mem:false should pass: %s" (List.hd es)

let () =
  Alcotest.run "coexec"
    [
      ( "co-residency",
        [
          Alcotest.test_case "disjoint residents pass" `Quick test_disjoint_residents_pass;
          Alcotest.test_case "overlap detected" `Quick test_overlap_detected;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "hyperperiod is an lcm" `Quick test_hyperperiod_lcm;
          Alcotest.test_case "co-resident simulation" `Quick test_coresident_simulation;
          Alcotest.test_case "bus check over hyperperiod" `Quick
            test_bus_check_over_hyperperiod;
          Alcotest.test_case "mixed fabrics rejected" `Quick
            test_mixed_fabrics_rejected;
          Alcotest.test_case "single resident" `Quick test_single_resident;
          Alcotest.test_case "bus collision only at hyperperiod" `Quick
            test_bus_collision_only_at_hyperperiod;
        ] );
    ]
